package hetgrid

// The benchmark harness regenerates every figure of the paper's
// evaluation at a reduced scale (population, job count and horizon
// shrink; dimensionalities, ratios and periods stay at paper values so
// the shapes are preserved):
//
//	Figure 5 — BenchmarkFig5InterArrival: wait-time CDFs vs job
//	  inter-arrival time, schemes can-het / can-hom / central.
//	Figure 6 — BenchmarkFig6ConstraintRatio: wait-time CDFs vs job
//	  constraint ratio.
//	Figure 7 — BenchmarkFig7BrokenLinks: broken links under high churn,
//	  schemes vanilla / compact / adaptive.
//	Figure 8 — BenchmarkFig8Messages / BenchmarkFig8Volume: maintenance
//	  message count and volume per node per minute vs dimensionality.
//
// The full-scale regeneration (1000–2000 nodes, 20000 jobs, 30000 s
// horizons) is cmd/figures; these benchmarks exercise the identical
// code paths and report the figure's headline numbers as custom
// metrics. Note that Figure 8's per-dimension growth saturates at small
// populations (a node's zone is only split along ~log₂(n) dimensions,
// bounding its face count), so the bench-scale message counts flatten
// past d≈8 while the full-scale run keeps growing.
//
// Micro-benchmarks below them cover the underlying substrates (CAN
// join/leave/routing, heartbeat rounds, matchmaking, aggregation).

import (
	"fmt"
	"runtime"
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/experiments"
	"hetgrid/internal/geom"
	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/proto"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
	"hetgrid/internal/workload"
)

const benchScale = experiments.Scale(0.04)

// BenchmarkFig5InterArrival regenerates Figure 5 (one sub-benchmark per
// inter-arrival time, one LB run per scheme per iteration).
func BenchmarkFig5InterArrival(b *testing.B) {
	for _, ia := range []float64{2, 3, 4} {
		b.Run(fmt.Sprintf("arrival=%.0fs", ia), func(b *testing.B) {
			var meanHet, meanHom, meanCentral float64
			for i := 0; i < b.N; i++ {
				for _, scheme := range experiments.LBSchemes {
					cfg := experiments.DefaultLBConfig(scheme)
					cfg.Nodes = 150
					cfg.Jobs = 1500
					cfg.MeanInterArrival = sim.FromSeconds(ia / float64(benchScale) / 25)
					cfg.Seed = int64(i + 1)
					res, err := experiments.RunLoadBalance(cfg)
					if err != nil {
						b.Fatal(err)
					}
					switch scheme {
					case experiments.CanHet:
						meanHet = res.WaitTimes.Mean()
					case experiments.CanHom:
						meanHom = res.WaitTimes.Mean()
					case experiments.Central:
						meanCentral = res.WaitTimes.Mean()
					}
				}
			}
			b.ReportMetric(meanHet, "canhet-wait-s")
			b.ReportMetric(meanHom, "canhom-wait-s")
			b.ReportMetric(meanCentral, "central-wait-s")
			reportJobsPerSec(b, 1500*len(experiments.LBSchemes))
		})
	}
}

// BenchmarkFig6ConstraintRatio regenerates Figure 6.
func BenchmarkFig6ConstraintRatio(b *testing.B) {
	for _, q := range []float64{0.8, 0.6, 0.4} {
		b.Run(fmt.Sprintf("ratio=%.0f%%", q*100), func(b *testing.B) {
			var meanHet, meanHom, meanCentral float64
			for i := 0; i < b.N; i++ {
				for _, scheme := range experiments.LBSchemes {
					cfg := experiments.DefaultLBConfig(scheme)
					cfg.Nodes = 150
					cfg.Jobs = 1500
					cfg.ConstraintRatio = q
					cfg.MeanInterArrival = 20 * sim.Second
					cfg.Seed = int64(i + 1)
					res, err := experiments.RunLoadBalance(cfg)
					if err != nil {
						b.Fatal(err)
					}
					switch scheme {
					case experiments.CanHet:
						meanHet = res.WaitTimes.Mean()
					case experiments.CanHom:
						meanHom = res.WaitTimes.Mean()
					case experiments.Central:
						meanCentral = res.WaitTimes.Mean()
					}
				}
			}
			b.ReportMetric(meanHet, "canhet-wait-s")
			b.ReportMetric(meanHom, "canhom-wait-s")
			b.ReportMetric(meanCentral, "central-wait-s")
			reportJobsPerSec(b, 1500*len(experiments.LBSchemes))
		})
	}
}

// BenchmarkFig7BrokenLinks regenerates Figure 7: broken links under
// high churn per heartbeat scheme.
func BenchmarkFig7BrokenLinks(b *testing.B) {
	for _, scheme := range experiments.MaintSchemes {
		b.Run(scheme.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultResilienceConfig(scheme)
				cfg.Nodes = 120
				cfg.HeartbeatPeriod = 20 * sim.Second
				cfg.MeanEventGap = 5 * sim.Second
				cfg.Horizon = 3000 * sim.Second
				cfg.SampleEvery = 100 * sim.Second
				cfg.Seed = int64(i + 1)
				mean = experiments.RunResilience(cfg).MeanBroken()
			}
			b.ReportMetric(mean, "broken-links")
		})
	}
}

// BenchmarkFig8Messages regenerates Figure 8(a): messages per node per
// minute vs dimensionality, per scheme.
func BenchmarkFig8Messages(b *testing.B) {
	benchFig8(b, func(r *experiments.ScalabilityResult) (float64, string) {
		return r.MsgsPerNodeMin, "msgs/node/min"
	})
}

// BenchmarkFig8Volume regenerates Figure 8(b): message volume per node
// per minute vs dimensionality, per scheme.
func BenchmarkFig8Volume(b *testing.B) {
	benchFig8(b, func(r *experiments.ScalabilityResult) (float64, string) {
		return r.KBytesPerNodeMin, "KB/node/min"
	})
}

func benchFig8(b *testing.B, pick func(*experiments.ScalabilityResult) (float64, string)) {
	for _, scheme := range experiments.MaintSchemes {
		for _, dims := range experiments.Figure8Dims {
			b.Run(fmt.Sprintf("%s/dims=%d", scheme, dims), func(b *testing.B) {
				var metric float64
				var unit string
				for i := 0; i < b.N; i++ {
					cfg := experiments.DefaultScalabilityConfig(scheme, dims, 120)
					cfg.Warmup = 2 * sim.Minute
					cfg.Measure = 6 * sim.Minute
					cfg.Seed = int64(i + 1)
					metric, unit = pick(experiments.RunScalability(cfg))
				}
				b.ReportMetric(metric, unit)
			})
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkCANJoin measures overlay join cost as the population grows.
func BenchmarkCANJoin(b *testing.B) {
	for _, dims := range []int{5, 11} {
		b.Run(fmt.Sprintf("dims=%d", dims), func(b *testing.B) {
			s := rng.New(1)
			ov := can.NewOverlay(dims)
			pts := make([]geom.Point, b.N)
			for i := range pts {
				p := make(geom.Point, dims)
				for d := range p {
					p[d] = s.Float64() * 0.999
				}
				pts[i] = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ov.Join(pts[i], nil)
			}
		})
	}
}

// BenchmarkCANRoute measures greedy routing in a 1000-node overlay.
func BenchmarkCANRoute(b *testing.B) {
	for _, dims := range []int{5, 11} {
		b.Run(fmt.Sprintf("dims=%d", dims), func(b *testing.B) {
			s := rng.New(2)
			ov := can.NewOverlay(dims)
			randomPt := func() geom.Point {
				p := make(geom.Point, dims)
				for d := range p {
					p[d] = s.Float64() * 0.999
				}
				return p
			}
			for i := 0; i < 1000; i++ {
				ov.Join(randomPt(), nil)
			}
			nodes := ov.Nodes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from := nodes[i%len(nodes)]
				if _, err := ov.Route(from.ID, randomPt()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCANChurn measures a leave+join pair in a 500-node overlay.
func BenchmarkCANChurn(b *testing.B) {
	s := rng.New(3)
	dims := 11
	ov := can.NewOverlay(dims)
	randomPt := func() geom.Point {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = s.Float64() * 0.999
		}
		return p
	}
	for i := 0; i < 500; i++ {
		ov.Join(randomPt(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := ov.Nodes()
		ov.Leave(nodes[s.Intn(len(nodes))].ID)
		ov.Join(randomPt(), nil)
	}
}

// BenchmarkHeartbeatRound measures one full heartbeat period for a
// 200-node overlay under each scheme.
func BenchmarkHeartbeatRound(b *testing.B) {
	for _, scheme := range experiments.MaintSchemes {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := proto.DefaultConfig(scheme)
			s := proto.NewSim(11, cfg)
			d := proto.NewChurnDriver(s, proto.ChurnConfig{InitialNodes: 200, JoinGap: 100 * sim.Millisecond, Seed: 1})
			d.Start()
			s.Eng.RunUntil(d.ChurnStart + sim.Time(2*cfg.HeartbeatPeriod))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Eng.RunUntil(s.Eng.Now() + sim.Time(cfg.HeartbeatPeriod))
			}
		})
	}
}

// BenchmarkChurnRound measures one heartbeat period for a 200-node
// overlay under heavy churn (mean one membership event per 5 s against
// the 60 s heartbeat — 3× the intensity of Figure 7's high-churn
// regime), for each maintenance scheme. The churn-path handlers (join
// intro, leave handoff, takeover union) run through the pooled message
// machinery; b.ReportAllocs keeps their allocs/op honest.
func BenchmarkChurnRound(b *testing.B) {
	for _, scheme := range experiments.MaintSchemes {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := proto.DefaultConfig(scheme)
			s := proto.NewSim(11, cfg)
			cc := proto.DefaultChurnConfig(200, 5*sim.Second)
			cc.JoinGap = 100 * sim.Millisecond
			cc.MinNodes = 150
			d := proto.NewChurnDriver(s, cc)
			d.Start()
			s.Eng.RunUntil(d.ChurnStart + sim.Time(2*cfg.HeartbeatPeriod))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Eng.RunUntil(s.Eng.Now() + sim.Time(cfg.HeartbeatPeriod))
			}
		})
	}
}

// BenchmarkScaleXLLoadBalance runs the 10,000-node ScaleXL
// configuration end to end with a reduced job count — an order of
// magnitude past the paper's evaluation, the regime the incremental
// aggregation plane exists for. One iteration is a full run; `make
// bench-xl` runs it once as the CI smoke.
func BenchmarkScaleXLLoadBalance(b *testing.B) {
	cfg := experiments.ScaleXLLBConfig(experiments.CanHet)
	cfg.Jobs = 4000
	var wait float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunLoadBalance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wait = res.WaitTimes.Mean()
	}
	b.ReportMetric(wait, "wait-s")
	reportJobsPerSec(b, cfg.Jobs)
}

// BenchmarkPlacement measures single-job matchmaking in a 500-node grid
// for each scheme.
func BenchmarkPlacement(b *testing.B) {
	for _, name := range []Scheme{SchemeCanHet, SchemeCanHom, SchemeCentral} {
		b.Run(string(name), func(b *testing.B) {
			g, err := New(Options{Scheme: name, Seed: 8})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.AddRandomNodes(500); err != nil {
				b.Fatal(err)
			}
			spec := JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Submit(spec); err != nil {
					b.Fatal(err)
				}
				if i%100 == 99 {
					b.StopTimer()
					g.Run() // drain so queues do not grow unboundedly
					b.StartTimer()
				}
			}
			reportJobsPerSec(b, 1)
		})
	}
}

// BenchmarkPlaceSteadyState measures the pure matchmaking walk — Place
// only, no job execution — in a 500-node grid once the overlay's read
// caches and the scheduler's scratch buffers are warm. Steady state is
// the claim: b.ReportAllocs must show 0 allocs/op for both CAN schemes.
func BenchmarkPlaceSteadyState(b *testing.B) {
	eng := sim.New()
	space := resource.NewSpace(2)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	gen := workload.NewNodeGen(space, 8)
	redraw := rng.New(88)
	for i := 0; i < 500; i++ {
		caps := gen.One()
		n, err := ov.Join(space.NodePoint(caps), caps)
		for err != nil {
			caps.Virtual = redraw.Float64() * 0.999999
			n, err = ov.Join(space.NodePoint(caps), caps)
		}
		cl.AddNode(n.ID, caps)
	}
	jgen := workload.NewJobGen(space, 9)
	jobs := make([]*exec.Job, 256)
	for i := range jobs {
		jobs[i], _ = jgen.Next()
	}
	// Build every node's cached view up front: with no churn the views
	// never rebuild, so the measured loop sees the true steady state
	// rather than amortized one-time lazy builds.
	for _, n := range ov.Nodes() {
		ov.NeighborView(n.ID)
		ov.OutwardView(n.ID)
	}
	for _, tc := range []struct {
		name  string
		build func(*sched.Context) sched.Scheduler
	}{
		{"canhet", func(c *sched.Context) sched.Scheduler { return sched.NewCanHet(c) }},
		{"canhom", func(c *sched.Context) sched.Scheduler { return sched.NewCanHom(c) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := tc.build(sched.NewContext(eng, ov, cl, space, 8))
			// Warm the view caches, the aggregate table and every
			// scratch buffer before measuring.
			for i := 0; i < 64; i++ {
				if _, err := s.Place(jobs[i%len(jobs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Place(jobs[i%len(jobs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlaceSteadyStateMetricsOn repeats the steady-state walk with
// a telemetry plane attached and a full sampling sweep every 64
// placements — the densest realistic cadence (one sweep per virtual
// heartbeat covers thousands of placements). The ISSUE's budget: the
// probe-free Place stays 0 allocs/op, and the amortized sampling cost
// must stay within the benchjson gate of the plain variant.
func BenchmarkPlaceSteadyStateMetricsOn(b *testing.B) {
	eng := sim.New()
	space := resource.NewSpace(2)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	gen := workload.NewNodeGen(space, 8)
	redraw := rng.New(88)
	for i := 0; i < 500; i++ {
		caps := gen.One()
		n, err := ov.Join(space.NodePoint(caps), caps)
		for err != nil {
			caps.Virtual = redraw.Float64() * 0.999999
			n, err = ov.Join(space.NodePoint(caps), caps)
		}
		cl.AddNode(n.ID, caps)
	}
	jgen := workload.NewJobGen(space, 9)
	jobs := make([]*exec.Job, 256)
	for i := range jobs {
		jobs[i], _ = jgen.Next()
	}
	for _, n := range ov.Nodes() {
		ov.NeighborView(n.ID)
		ov.OutwardView(n.ID)
	}
	ctx := sched.NewContext(eng, ov, cl, space, 8)
	s := sched.NewCanHet(ctx)
	plane := metrics.New(60*sim.Second, 0)
	plane.Attach(eng)
	metricsreg.RegisterGridGauges(plane, ov, cl, ctx.Agg, space.Dims(), 2)
	if st := sched.StatsOf(s); st != nil {
		metricsreg.RegisterSchedCounters(plane, st)
	}
	metricsreg.RegisterClusterCounters(plane, cl)
	// Warm scratch buffers and the sampling rings before measuring.
	for i := 0; i < 64; i++ {
		if _, err := s.Place(jobs[i%len(jobs)]); err != nil {
			b.Fatal(err)
		}
	}
	plane.SampleNow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Place(jobs[i%len(jobs)]); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			plane.SampleNow()
		}
	}
}

// reportJobsPerSec reports simulated job throughput: jobsPerOp jobs are
// placed and executed per benchmark iteration, over the timed portion
// of the run.
func reportJobsPerSec(b *testing.B, jobsPerOp int) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(jobsPerOp*b.N)/secs, "jobs/s")
	}
}

// BenchmarkAggRefresh measures the full aggregated-load recomputation
// for the evaluation's 1000-node, 11-dimensional configuration.
// MarkAllDirty forces the pre-incremental full-rebuild path every
// iteration, so this series keeps measuring the same work across the
// benchmark trajectory now that a plain Refresh with no dirty nodes is
// nearly free; the incremental path has its own benchmark below.
func BenchmarkAggRefresh(b *testing.B) {
	eng := sim.New()
	space := resource.NewSpace(2)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	gen := workload.NewNodeGen(space, 1)
	redraw := rng.New(9)
	for i := 0; i < 1000; i++ {
		caps := gen.One()
		n, err := ov.Join(space.NodePoint(caps), caps)
		for err != nil {
			caps.Virtual = redraw.Float64() * 0.999999
			n, err = ov.Join(space.NodePoint(caps), caps)
		}
		cl.AddNode(n.ID, caps)
	}
	agg := sched.NewAggTable(space.Dims(), space.GPUSlots)
	agg.Refresh(ov, cl) // pay the one-time topology build outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.MarkAllDirty()
		agg.Refresh(ov, cl)
	}
}

// BenchmarkAggRefreshIncremental measures the aggregation plane at the
// 10,000-node population the incremental rewrite targets (d = 4,
// CPU-only capabilities, matching the ISSUE's acceptance criterion):
//
//	sparse16 — a refresh after 16 nodes changed load, the steady
//	  heartbeat case. Must be ≥ 10× faster than alldirty and allocate
//	  nothing (b.ReportAllocs).
//	alldirty — the full O(n·d) load rebuild at identical size: the
//	  pre-incremental baseline the speedup is measured against.
//	churn — a refresh right after a leave+join pair: a two-event
//	  journal splice plus the linear Fenwick reconstruction (the
//	  membership-delta path; BenchmarkChurnStorm measures it against
//	  the full-rebuild baseline it replaced).
func BenchmarkAggRefreshIncremental(b *testing.B) {
	const (
		dims = 4
		n    = 10000
	)
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	pts := rng.New(7)
	randomPt := func() geom.Point {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = pts.Float64() * 0.999999
		}
		return p
	}
	newCaps := func(i int) *resource.NodeCaps {
		return &resource.NodeCaps{CEs: []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + i%4}}}
	}
	for i := 0; i < n; i++ {
		caps := newCaps(i)
		nd, err := ov.Join(randomPt(), caps)
		for err != nil {
			nd, err = ov.Join(randomPt(), caps)
		}
		cl.AddNode(nd.ID, caps)
	}
	agg := sched.NewAggTable(dims, 0)
	// Jobs never finish (the engine is not stepped), so every Submit is
	// a durable DemandOn change on its node: first cores occupied, then
	// queue growth.
	jobID := 0
	submit := func(b *testing.B, node can.NodeID) {
		jobID++
		j := &exec.Job{
			ID:           exec.JobID(jobID),
			Req:          resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 1}}},
			Dominant:     resource.TypeCPU,
			BaseDuration: sim.FromSeconds(1e9),
		}
		if err := cl.Submit(j, node); err != nil {
			b.Fatal(err)
		}
	}
	// First use rebuilds from scratch, the initial non-enumerable drain
	// rebuilds once more, and from then on Refresh is incremental.
	warm := func() {
		agg.Refresh(ov, cl)
		agg.Refresh(ov, cl)
		agg.Refresh(ov, cl)
	}
	b.Run("sparse16", func(b *testing.B) {
		warm()
		nodes := ov.Nodes()
		next := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for k := 0; k < 16; k++ {
				submit(b, nodes[next%len(nodes)].ID)
				next++
			}
			b.StartTimer()
			agg.Refresh(ov, cl)
		}
	})
	b.Run("alldirty", func(b *testing.B) {
		warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.MarkAllDirty()
			agg.Refresh(ov, cl)
		}
	})
	b.Run("churn", func(b *testing.B) {
		warm()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			nodes := ov.Nodes()
			victim := nodes[pts.Intn(len(nodes))]
			cl.RemoveNode(victim.ID)
			ov.Leave(victim.ID)
			caps := newCaps(i)
			nd, err := ov.Join(randomPt(), caps)
			for err != nil {
				nd, err = ov.Join(randomPt(), caps)
			}
			cl.AddNode(nd.ID, caps)
			b.StartTimer()
			agg.Refresh(ov, cl)
		}
	})
}

// benchChurnStorm measures what one sustained-churn round costs the
// aggregation plane at population n: every iteration departs one node
// and admits another (two overlay versions), then brings a table up to
// date. The incremental sub-bench takes the journal-splice path —
// O(d·log n) search plus tail memmove per event and one linear Fenwick
// reconstruction — while fullrebuild pays the per-dimension re-sort
// plus load sweep the splice replaced. The mutation itself runs outside
// the timer, so the two sub-benches compare exactly the refresh cost.
func benchChurnStorm(b *testing.B, n int) {
	const dims = 4
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	pts := rng.New(11)
	randomPt := func() geom.Point {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = pts.Float64() * 0.999999
		}
		return p
	}
	newCaps := func(i int) *resource.NodeCaps {
		return &resource.NodeCaps{CEs: []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + i%4}}}
	}
	for i := 0; i < n; i++ {
		caps := newCaps(i)
		nd, err := ov.Join(randomPt(), caps)
		for err != nil {
			nd, err = ov.Join(randomPt(), caps)
		}
		cl.AddNode(nd.ID, caps)
	}
	churnRound := func(i int) {
		nodes := ov.Nodes()
		victim := nodes[pts.Intn(len(nodes))]
		cl.RemoveNode(victim.ID)
		if _, err := ov.Leave(victim.ID); err != nil {
			b.Fatal(err)
		}
		caps := newCaps(i)
		nd, err := ov.Join(randomPt(), caps)
		for err != nil {
			nd, err = ov.Join(randomPt(), caps)
		}
		cl.AddNode(nd.ID, caps)
	}
	b.Run("incremental", func(b *testing.B) {
		agg := sched.NewAggTable(dims, 0)
		agg.Refresh(ov, cl)
		agg.Refresh(ov, cl)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churnRound(i)
			b.StartTimer()
			agg.Refresh(ov, cl)
		}
		b.StopTimer()
		if st := agg.Stats(); st.ChurnRefreshes < int64(b.N) {
			b.Fatalf("only %d of %d refreshes took the splice path", st.ChurnRefreshes, b.N)
		}
	})
	b.Run("fullrebuild", func(b *testing.B) {
		agg := sched.NewAggTable(dims, 0)
		agg.RefreshFull(ov, cl)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churnRound(i)
			b.StartTimer()
			agg.RefreshFull(ov, cl)
		}
	})
}

// BenchmarkChurnStorm is the gated steady-churn benchmark at the
// 10,000-node population (d = 4): the acceptance bar is incremental ≥
// 10× faster than fullrebuild per churn round.
func BenchmarkChurnStorm(b *testing.B) {
	benchChurnStorm(b, 10000)
}

// BenchmarkChurnStormXXL repeats the churn-storm comparison at the
// 100,000-node ScaleXXL population. Run via `make bench-xxl`; at this
// size the full-rebuild baseline is two decimal orders slower than the
// splice, so the benchmark is ungated and excluded from the default
// `make bench` wall-clock budget.
func BenchmarkChurnStormXXL(b *testing.B) {
	benchChurnStorm(b, experiments.ScaleXXLNodes)
}

// BenchmarkScaleXXLLoadBalance runs the 100,000-node ScaleXXL
// configuration end to end with a reduced job count: the CI smoke
// proving that a six-figure grid — join storm, placement walks,
// incremental aggregation and candidate indexes — completes inside the
// bench-xxl timeout. One iteration is a full run.
func BenchmarkScaleXXLLoadBalance(b *testing.B) {
	cfg := experiments.ScaleXXLLBConfig(experiments.CanHet)
	cfg.Jobs = 2000
	var wait float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunLoadBalance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wait = res.WaitTimes.Mean()
	}
	b.ReportMetric(wait, "wait-s")
	reportJobsPerSec(b, cfg.Jobs)
}

// BenchmarkWorkloadGen measures job-stream generation.
func BenchmarkWorkloadGen(b *testing.B) {
	space := resource.NewSpace(2)
	jg := workload.NewJobGen(space, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jg.Next()
	}
}

// shardBenchLookahead is the engine benchmark's delivery latency: every
// cross-shard message arrives exactly one lookahead after it is sent,
// the same discipline netsim imposes.
const shardBenchLookahead = 10

// shardBenchMsg is one in-flight cross-shard message of the engine
// benchmark: it folds the arrival time into the destination actor's
// checksum. Its field is written by the sending actor before Post and
// read on the destination shard's worker after the flush barrier; each
// sender reuses messages through a ring far longer (64 sends, ≥ 1 tick
// apart) than the delivery delay, so a message is never rewritten while
// a mailbox or destination queue still references it.
type shardBenchMsg struct {
	dst *shardBenchActor
}

func (m *shardBenchMsg) Call(now sim.Time) { m.dst.sum += uint64(now) }

// shardBenchActor is a self-rescheduling actor whose behavior is a pure
// function of its seed: an LCG drives its delays and its occasional
// sends to pseudo-random actors on pseudo-random shards, so the
// workload is identical across shard and worker counts.
type shardBenchActor struct {
	se    *sim.ShardedEngine
	peers [][]*shardBenchActor
	shard int
	id    int
	state uint64
	sum   uint64
	next  int
	ring  [64]shardBenchMsg
}

func (a *shardBenchActor) Call(now sim.Time) {
	a.state = a.state*6364136223846793005 + 1442695040888963407
	r := a.state >> 33
	a.sum += r
	if r&3 == 0 {
		ds := int(r>>2) % len(a.peers)
		row := a.peers[ds]
		m := &a.ring[a.next]
		a.next = (a.next + 1) % len(a.ring)
		m.dst = row[int(r>>8)%len(row)]
		a.se.Post(a.shard, ds, now.Add(shardBenchLookahead), uint64(a.shard)<<16|uint64(a.id), m)
	}
	a.se.Shard(a.shard).AfterCall(sim.Duration(1+r%13), a)
}

// benchShardedEngine runs a fixed 64-actor message-passing workload to
// a fixed horizon on S shards. The total event count is independent of
// S (actors are dealt round-robin), so the S=1 and S=4 entries measure
// the engine's partitioning overhead and parallel speedup over the
// same work.
func benchShardedEngine(b *testing.B, shards int) {
	const totalActors = 64
	const horizon = 5000 * sim.Time(sim.Millisecond)
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	b.ReportAllocs()
	var sum uint64
	for i := 0; i < b.N; i++ {
		se := sim.NewSharded(shards, shardBenchLookahead)
		se.SetWorkers(workers)
		peers := make([][]*shardBenchActor, shards)
		actors := make([]*shardBenchActor, totalActors)
		for j := range actors {
			sh := j % shards
			a := &shardBenchActor{se: se, peers: peers, shard: sh, id: j, state: uint64(j)*0x9e3779b97f4a7c15 + 1}
			peers[sh] = append(peers[sh], a)
			actors[j] = a
		}
		for _, a := range actors {
			se.Shard(a.shard).AfterCall(sim.Duration(1+a.state%7), a)
		}
		se.RunUntil(horizon)
		se.Close()
		for _, a := range actors {
			sum += a.sum
		}
	}
	if sum == 0 {
		b.Fatal("workload fired no events")
	}
}

// BenchmarkShardedEngine is the gated cost entry for the conservative
// time-window engine: S=1 pins the sequential overhead of the sharded
// path (mailboxes, window computation) and S=4 its parallel profile.
// The BENCH gate compares entries only within the same GOMAXPROCS (see
// cmd/benchjson), so the parallel entry is never judged against a
// serial baseline.
func BenchmarkShardedEngine(b *testing.B) {
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) { benchShardedEngine(b, s) })
	}
}

// benchShardedHeartbeat measures steady-state heartbeat rounds at a
// large population on the sharded protocol simulation: the join storm
// and warmup run untimed, then three 10-second heartbeat periods of
// the full population are timed. Churn is disabled so the timed window
// is pure parallel-phase work — the component the worker count
// accelerates.
func benchShardedHeartbeat(b *testing.B, nodes, shards, workers int) {
	benchShardedHeartbeatEvery(b, nodes, shards, workers, 0)
}

// benchShardedHeartbeatEvery is benchShardedHeartbeat with an optional
// telemetry plane: a non-zero sampleEvery attaches a barrier-merged
// ShardedPlane (the full proto + per-kind transport registration the
// figure driver wires) sampling at that cadence through the timed
// window, so the metrics-on/off pair prices the facet reads and
// reductions the telemetry plane adds per barrier.
func benchShardedHeartbeatEvery(b *testing.B, nodes, shards, workers int, sampleEvery sim.Duration) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := proto.DefaultConfig(proto.Adaptive)
		cfg.HeartbeatPeriod = 10 * sim.Second
		cfg.Seed = int64(i + 1)
		ss := proto.NewShardedSim(shards, workers, 3, cfg)
		churn := proto.DefaultChurnConfig(nodes, 0)
		churn.JoinGap = sim.Millisecond
		churn.Seed = int64(i + 1)
		d := proto.NewShardedChurnDriver(ss, churn)
		d.Start()
		var m *metrics.Plane
		if sampleEvery > 0 {
			m = metrics.New(sampleEvery, 0)
			m.Attach(ss.SE)
			sp := metrics.NewShardedPlane(m, ss.Shards())
			metricsreg.RegisterShardedProtoGauges(sp, ss)
			metricsreg.RegisterShardedNetCounters(sp, ss.Net, "net")
			m.Poke()
		}
		ss.RunUntil(d.ChurnStart.Add(5 * sim.Second))
		// Flush the join storm's garbage (and any prior sub-benchmark's
		// lingering heap) before timing, so the measured window reflects
		// heartbeat work rather than inherited GC debt.
		runtime.GC()
		b.StartTimer()
		ss.RunUntil(ss.SE.Now().Add(30 * sim.Second))
		b.StopTimer()
		alive := ss.AliveHosts()
		ss.Close()
		if alive < nodes*9/10 {
			b.Fatalf("population collapsed: %d of %d alive", alive, nodes)
		}
		if m != nil && m.Samples() == 0 {
			b.Fatal("telemetry plane took no samples in the timed window")
		}
		b.StartTimer()
	}
}

// BenchmarkShardedHeartbeatMetricsOverhead prices the sharded
// telemetry plane: the identical modest-scale heartbeat workload with
// no plane and with a 5-second barrier-merged sampling cadence. The
// off/on ns/op gap is the whole cost of telemetry — the determinism
// contract guarantees the event history itself is unchanged, so any
// difference is facet reads, reductions and ring writes at barriers.
func BenchmarkShardedHeartbeatMetricsOverhead(b *testing.B) {
	const nodes, shards = 2000, 4
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	b.Run("metrics=off", func(b *testing.B) {
		benchShardedHeartbeatEvery(b, nodes, shards, workers, 0)
	})
	b.Run("metrics=on", func(b *testing.B) {
		benchShardedHeartbeatEvery(b, nodes, shards, workers, 5*sim.Second)
	})
}

// BenchmarkShardedHeartbeat100k is the bench-xxl speedup smoke for the
// sharded core: the identical 100,000-node heartbeat workload (S=8 is
// a model parameter — the engine's determinism contract makes the
// event history independent of it) executed by one worker and by all
// of them. The W=1 / W=max ns/op ratio read off the bench-xxl log is
// the engine's parallel speedup on the runner; on a single-core
// machine the two entries simply coincide.
func BenchmarkShardedHeartbeat100k(b *testing.B) {
	const shards = 8
	b.Run("W=1", func(b *testing.B) {
		benchShardedHeartbeat(b, experiments.ScaleXXLNodes, shards, 1)
	})
	b.Run("W=max", func(b *testing.B) {
		benchShardedHeartbeat(b, experiments.ScaleXXLNodes, shards, runtime.GOMAXPROCS(0))
	})
}

// benchShardedHeartbeatPolicy is benchShardedHeartbeat under an
// explicit window policy, reporting the engine's synchronization
// structure over the timed window as custom metrics: windows/op is the
// barrier count (serial sections at the outer loop) and hops/op the
// lookahead-grained conservative windows executed inside them. Under
// the fixed policy the two coincide; under the adaptive policy the
// windows/op collapse IS the optimization — the event history, and so
// hops/op, is byte-identical by the determinism contract. Returns the
// mean barrier count per iteration so smoke harnesses can assert the
// fixed/adaptive reduction ratio.
func benchShardedHeartbeatPolicy(b *testing.B, nodes, shards, workers int, policy sim.WindowPolicy) float64 {
	var windows, hops int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := proto.DefaultConfig(proto.Adaptive)
		cfg.HeartbeatPeriod = 10 * sim.Second
		cfg.Seed = int64(i + 1)
		ss := proto.NewShardedSim(shards, workers, 3, cfg)
		ss.SE.SetWindowPolicy(policy)
		churn := proto.DefaultChurnConfig(nodes, 0)
		churn.JoinGap = sim.Millisecond
		churn.Seed = int64(i + 1)
		d := proto.NewShardedChurnDriver(ss, churn)
		d.Start()
		ss.RunUntil(d.ChurnStart.Add(5 * sim.Second))
		runtime.GC()
		pre := ss.SE.WindowStats()
		b.StartTimer()
		ss.RunUntil(ss.SE.Now().Add(30 * sim.Second))
		b.StopTimer()
		post := ss.SE.WindowStats()
		windows += post.Windows - pre.Windows
		hops += post.Hops - pre.Hops
		alive := ss.AliveHosts()
		ss.Close()
		if alive < nodes*9/10 {
			b.Fatalf("population collapsed: %d of %d alive", alive, nodes)
		}
		b.StartTimer()
	}
	winPerOp := float64(windows) / float64(b.N)
	b.ReportMetric(winPerOp, "windows/op")
	b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
	return winPerOp
}

// BenchmarkShardedHeartbeatAdaptive is the gated window-policy pair:
// the identical modest-scale heartbeat steady-state workload under the
// fixed and adaptive policies. The fixed entry keeps the policy
// dispatch from taxing the PR-7 path; the adaptive entry prices the
// wide-window machinery (generation double-buffering, hop flushes) and
// its windows/op metric makes the barrier collapse visible in every
// bench log. Entries carry GOMAXPROCS in BENCH_*.json and gate only
// against baselines at the same parallelism.
func BenchmarkShardedHeartbeatAdaptive(b *testing.B) {
	const nodes, shards = 2000, 4
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	b.Run("window=fixed", func(b *testing.B) {
		benchShardedHeartbeatPolicy(b, nodes, shards, workers, sim.WindowFixed)
	})
	b.Run("window=adaptive", func(b *testing.B) {
		benchShardedHeartbeatPolicy(b, nodes, shards, workers, sim.WindowAdaptive)
	})
}

// BenchmarkShardedHeartbeatAdaptive100k is the bench-xxl smoke for the
// adaptive window policy at the scale the optimization targets: the
// 100,000-node heartbeat steady state (S=8, W=GOMAXPROCS) under the
// fixed and adaptive policies. The fixed/adaptive ns/op ratio in the
// log is the wall-clock win; the run fails outright unless the
// adaptive policy cuts the barrier count (windows/op) by at least 10×
// — the acceptance bar ISSUE 10 sets for heartbeat-period widening
// over latency-grained windows.
func BenchmarkShardedHeartbeatAdaptive100k(b *testing.B) {
	const shards = 8
	workers := runtime.GOMAXPROCS(0)
	var fixedWin, adaptWin float64
	b.Run("window=fixed", func(b *testing.B) {
		fixedWin = benchShardedHeartbeatPolicy(b, experiments.ScaleXXLNodes, shards, workers, sim.WindowFixed)
	})
	b.Run("window=adaptive", func(b *testing.B) {
		adaptWin = benchShardedHeartbeatPolicy(b, experiments.ScaleXXLNodes, shards, workers, sim.WindowAdaptive)
	})
	if adaptWin <= 0 || fixedWin/adaptWin < 10 {
		b.Fatalf("adaptive windows cut barriers only %.1f× (fixed %.0f → adaptive %.0f windows/op), want ≥ 10×",
			fixedWin/adaptWin, fixedWin, adaptWin)
	}
}

// benchChurnStormSharded measures the sharded core under sustained
// churn with barrier-batched admission: the join storm and warmup run
// untimed, then 30 virtual seconds of the full population heartbeating
// WHILE the churn driver keeps injecting joins, leaves and silent
// failures on the batch plane. Unlike benchShardedHeartbeat, the timed
// window includes admission work — the component batched admission
// moves off the serial control plane and onto the workers.
func benchChurnStormSharded(b *testing.B, nodes, shards, workers int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := proto.DefaultConfig(proto.Adaptive)
		cfg.HeartbeatPeriod = 10 * sim.Second
		cfg.Seed = int64(i + 1)
		cfg.BatchedAdmission = true
		ss := proto.NewShardedSim(shards, workers, 3, cfg)
		churn := proto.DefaultChurnConfig(nodes, 50*sim.Millisecond)
		churn.JoinGap = sim.Millisecond
		churn.MinEventGap = 10 * sim.Millisecond
		churn.Seed = int64(i + 1)
		d := proto.NewShardedChurnDriver(ss, churn)
		d.Start()
		ss.RunUntil(d.ChurnStart.Add(5 * sim.Second))
		runtime.GC()
		b.StartTimer()
		ss.RunUntil(ss.SE.Now().Add(30 * sim.Second))
		b.StopTimer()
		alive := ss.AliveHosts()
		fails := d.Fails
		ss.Close()
		if alive < nodes*8/10 {
			b.Fatalf("population collapsed: %d of %d alive", alive, nodes)
		}
		if fails == 0 {
			b.Fatal("churn driver injected no failures — the storm never ran")
		}
		b.StartTimer()
	}
}

// BenchmarkChurnStormSharded is the gated batched-admission pair: the
// identical modest-scale churn-storm workload executed by one worker
// and by all of them (S=4). Entries carry GOMAXPROCS in BENCH_*.json
// and gate only against baselines at the same parallelism, so the pair
// pins the batch plane's cost without judging parallel against serial.
func BenchmarkChurnStormSharded(b *testing.B) {
	const nodes, shards = 2000, 4
	wmax := runtime.GOMAXPROCS(0)
	if wmax > shards {
		wmax = shards
	}
	b.Run("W=1", func(b *testing.B) { benchChurnStormSharded(b, nodes, shards, 1) })
	b.Run("W=max", func(b *testing.B) { benchChurnStormSharded(b, nodes, shards, wmax) })
}

// BenchmarkChurnStormSharded100k is the bench-xxl speedup smoke for
// barrier-batched admission: the 100,000-node churn storm (S=8, batched
// admission on) at one worker and at GOMAXPROCS. The W=1 / W=max ns/op
// ratio read off the bench-xxl log is the parallel speedup on exactly
// the regime the paper cares about; the acceptance bar on runners with
// GOMAXPROCS ≥ 4 is a ≥ 2× ratio, and on a single-core machine the two
// entries simply coincide.
func BenchmarkChurnStormSharded100k(b *testing.B) {
	const shards = 8
	b.Run("W=1", func(b *testing.B) {
		benchChurnStormSharded(b, experiments.ScaleXXLNodes, shards, 1)
	})
	b.Run("W=max", func(b *testing.B) {
		benchChurnStormSharded(b, experiments.ScaleXXLNodes, shards, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkScaleXXXLLoadBalance runs the 1,000,000-node ScaleXXXL
// configuration end to end with a reduced job count: the bench-xxxl CI
// smoke proving that a seven-figure grid — join storm, placement
// walks, incremental aggregation, candidate indexes and the carry-over
// rebuild — completes inside the timeout. One iteration is a full run.
func BenchmarkScaleXXXLLoadBalance(b *testing.B) {
	cfg := experiments.ScaleXXXLLBConfig(experiments.CanHet)
	cfg.Jobs = 2000
	var wait float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunLoadBalance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wait = res.WaitTimes.Mean()
	}
	b.ReportMetric(wait, "wait-s")
	reportJobsPerSec(b, cfg.Jobs)
}
