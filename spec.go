package hetgrid

import (
	"fmt"

	"hetgrid/internal/resource"
)

// NodeSpec describes a grid node's hardware for AddNode.
type NodeSpec struct {
	// CPU is required: every node has one non-dedicated multi-core CPU.
	CPU CPUSpec
	// GPUs lists the node's dedicated accelerators, at most one per
	// slot, slots numbered from 1.
	GPUs []GPUSpec
	// DiskGB is the node's available disk space.
	DiskGB float64
}

// CPUSpec describes a node's CPU.
type CPUSpec struct {
	Clock    float64 // relative to the nominal clock (1.0)
	Cores    int
	MemoryGB float64
}

// GPUSpec describes one accelerator. Accelerators are dedicated (one
// job at a time) unless Concurrent is set, which models the
// concurrent-kernel GPUs the paper anticipates: several jobs share the
// GPU's cores like a CPU.
type GPUSpec struct {
	Slot       int // accelerator type slot, 1..GPUSlots
	Clock      float64
	Cores      int
	MemoryGB   float64
	Concurrent bool
}

// toCaps converts the public spec to the internal capability vector.
func (n NodeSpec) toCaps(gpuSlots int, virtual float64) (*resource.NodeCaps, error) {
	caps := &resource.NodeCaps{
		CEs: []resource.CE{{
			Type:   resource.TypeCPU,
			Clock:  n.CPU.Clock,
			Cores:  n.CPU.Cores,
			Memory: n.CPU.MemoryGB,
		}},
		Disk:    n.DiskGB,
		Virtual: virtual,
	}
	seen := make(map[int]bool)
	for _, g := range n.GPUs {
		if g.Slot < 1 || g.Slot > gpuSlots {
			return nil, fmt.Errorf("hetgrid: GPU slot %d outside 1..%d", g.Slot, gpuSlots)
		}
		if seen[g.Slot] {
			return nil, fmt.Errorf("hetgrid: duplicate GPU slot %d", g.Slot)
		}
		seen[g.Slot] = true
		caps.CEs = append(caps.CEs, resource.CE{
			Type:      resource.CEType(g.Slot),
			Dedicated: !g.Concurrent,
			Clock:     g.Clock,
			Cores:     g.Cores,
			Memory:    g.MemoryGB,
		})
	}
	// CEs must be sorted by type.
	for i := 1; i < len(caps.CEs); i++ {
		for j := i; j > 1 && caps.CEs[j].Type < caps.CEs[j-1].Type; j-- {
			caps.CEs[j], caps.CEs[j-1] = caps.CEs[j-1], caps.CEs[j]
		}
	}
	if err := caps.Validate(); err != nil {
		return nil, fmt.Errorf("hetgrid: invalid node spec: %w", err)
	}
	return caps, nil
}

// JobSpec describes a job for Submit. Zero-valued requirement fields
// mean "any amount acceptable", the paper's omitted requirement.
type JobSpec struct {
	// CPU requirements (optional).
	CPU *CEReqSpec
	// GPU requirements (optional): the accelerator slot the job targets
	// plus its demands. A CUDA-style job sets both CPU (control thread)
	// and GPU, and the GPU will be its dominant CE.
	GPU     *CEReqSpec
	GPUSlot int
	// DiskGB is the minimum disk space.
	DiskGB float64
	// DurationHours is the job's execution time on a nominal
	// (clock 1.0) uncontended CE. Required.
	DurationHours float64
}

// CEReqSpec is a requirement against one CE.
type CEReqSpec struct {
	Clock    float64
	Cores    int
	MemoryGB float64
}

func (j JobSpec) toReq(gpuSlots int) (resource.JobReq, error) {
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{}, Disk: j.DiskGB}
	if j.CPU != nil {
		req.CE[resource.TypeCPU] = resource.CEReq{
			Clock: j.CPU.Clock, Cores: j.CPU.Cores, Memory: j.CPU.MemoryGB,
		}
	}
	if j.GPU != nil {
		slot := j.GPUSlot
		if slot == 0 {
			slot = 1
		}
		if slot < 1 || slot > gpuSlots {
			return resource.JobReq{}, fmt.Errorf("hetgrid: GPU slot %d outside 1..%d", slot, gpuSlots)
		}
		req.CE[resource.CEType(slot)] = resource.CEReq{
			Clock: j.GPU.Clock, Cores: j.GPU.Cores, Memory: j.GPU.MemoryGB,
		}
	}
	if len(req.CE) == 0 {
		req.CE[resource.TypeCPU] = resource.CEReq{Cores: 1}
	}
	if j.DurationHours <= 0 {
		return resource.JobReq{}, fmt.Errorf("hetgrid: job needs a positive DurationHours")
	}
	return req, nil
}
