package hetgrid

import (
	"bytes"
	"strings"
	"testing"
)

// buildSmallGrid runs a fixed tiny workload and returns the grid plus
// the finish times of its jobs (the observable outcome).
func buildSmallGrid(t *testing.T, m *Metrics) (*Grid, []float64) {
	t.Helper()
	g, err := New(Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		g.SetMetrics(m)
	}
	if _, err := g.AddRandomNodes(12); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5}); err != nil {
			t.Fatal(err)
		}
		g.RunFor(600)
	}
	g.Run()
	var finishes []float64
	for _, h := range g.Jobs() {
		finishes = append(finishes, h.WaitSeconds())
	}
	return g, finishes
}

func TestGridMetrics(t *testing.T) {
	m := NewMetrics(30)
	_, metered := buildSmallGrid(t, m)
	_, plain := buildSmallGrid(t, nil)

	// Telemetry must not change outcomes.
	if len(metered) != len(plain) {
		t.Fatalf("job counts differ: %d vs %d", len(metered), len(plain))
	}
	for i := range plain {
		if metered[i] != plain[i] {
			t.Fatalf("job %d wait differs with metrics attached: %v vs %v", i, metered[i], plain[i])
		}
	}

	if m.Samples() == 0 || m.Len() == 0 {
		t.Fatalf("no telemetry collected: samples=%d points=%d", m.Samples(), m.Len())
	}
	names := strings.Join(m.SeriesNames(), " ")
	for _, want := range []string{"node.queue", "node.neighbors", "sched.placed", "jobs.finished"} {
		if !strings.Contains(names, want) {
			t.Fatalf("series %q missing from %s", want, names)
		}
	}
	var jsonl, csv bytes.Buffer
	if err := m.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"series":"node.queue"`) {
		t.Fatal("JSONL missing node.queue points")
	}
	if !strings.HasPrefix(csv.String(), "series,t,node,v\n") {
		t.Fatal("CSV missing header")
	}
}

func TestGridMetricsStop(t *testing.T) {
	g, err := New(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(30)
	g.SetMetrics(m)
	if _, err := g.AddRandomNodes(4); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1}); err != nil {
		t.Fatal(err)
	}
	g.RunFor(120)
	n := m.Samples()
	if n == 0 {
		t.Fatal("no samples before stop")
	}
	g.SetMetrics(nil)
	if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1}); err != nil {
		t.Fatal(err)
	}
	g.Run()
	if m.Samples() != n {
		t.Fatalf("sampling continued after stop: %d -> %d", n, m.Samples())
	}
}

func TestGridPlacementSpans(t *testing.T) {
	g, err := New(Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	var tb TraceBuffer
	g.SetTraceBuffer(&tb)
	g.SetPlacementSpans(true)
	if _, err := g.AddRandomNodes(16); err != nil {
		t.Fatal(err)
	}
	h, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g.Run()

	var matches, spans int
	for _, e := range tb.Events() {
		switch e.Kind {
		case TracePlaceRoute, TracePlacePush:
			spans++
			if e.Job != h.ID() {
				t.Fatalf("span event for wrong job: %+v", e)
			}
		case TracePlaceMatch:
			matches++
			if e.Job != h.ID() || e.Node != int64(h.RunNode()) {
				t.Fatalf("match event disagrees with handle: %+v (want node %d)", e, h.RunNode())
			}
			if e.Detail == "" || e.Depth == 0 {
				t.Fatalf("match event missing detail/depth: %+v", e)
			}
		}
	}
	if matches != 1 {
		t.Fatalf("want exactly one place.match, got %d (%d other span events)", matches, spans)
	}

	// Disabling spans stops the stream; lifecycle events continue.
	g.SetPlacementSpans(false)
	before := tb.Len()
	if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5}); err != nil {
		t.Fatal(err)
	}
	g.Run()
	for _, e := range tb.Events()[before:] {
		if e.Kind == TracePlaceRoute || e.Kind == TracePlacePush || e.Kind == TracePlaceMatch {
			t.Fatalf("span event after disable: %+v", e)
		}
	}
}
