package hetgrid

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
	"hetgrid/internal/trace"
	"hetgrid/internal/workload"
)

// Scheme selects the matchmaking algorithm.
type Scheme string

// The three matchmakers of the paper's evaluation.
const (
	// SchemeCanHet is the paper's contribution: heterogeneity-aware
	// decentralized matchmaking (Algorithm 1).
	SchemeCanHet Scheme = "can-het"
	// SchemeCanHom is the prior heterogeneity-oblivious decentralized
	// scheme, kept as a baseline.
	SchemeCanHom Scheme = "can-hom"
	// SchemeCentral is a greedy online centralized matchmaker with
	// global knowledge, an upper-bound comparator.
	SchemeCentral Scheme = "central"
)

// Options configures a Grid.
type Options struct {
	// GPUSlots is the number of distinct accelerator types the CAN can
	// express (0–3 give the paper's 5/8/11/14-dimensional CANs).
	// Default 2.
	GPUSlots int
	// Scheme picks the matchmaker. Default SchemeCanHet.
	Scheme Scheme
	// Seed drives all randomness. Default 1.
	Seed int64
	// Gamma is the CPU contention coefficient. Default 0.3.
	Gamma float64
	// StoppingFactor is Equation 4's SF. Default 2.
	StoppingFactor float64
	// RefreshSeconds is the aggregated-load refresh cadence (the
	// heartbeat period). Default 60.
	RefreshSeconds float64
}

func (o Options) withDefaults() Options {
	if o.GPUSlots == 0 {
		o.GPUSlots = 2
	}
	if o.Scheme == "" {
		o.Scheme = SchemeCanHet
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 0.3
	}
	if o.StoppingFactor == 0 {
		o.StoppingFactor = 2
	}
	if o.RefreshSeconds == 0 {
		o.RefreshSeconds = 60
	}
	return o
}

// NodeID identifies a node added to the grid.
type NodeID int64

// Grid is a simulated heterogeneous P2P desktop grid: a CAN overlay of
// nodes, a decentralized matchmaker, and an execution model with FIFO
// queues, dedicated accelerators and CPU contention. All methods are
// single-threaded; the grid advances virtual time only inside Run and
// RunFor.
type Grid struct {
	opts      Options
	eng       *sim.Engine
	space     *resource.Space
	ov        *can.Overlay
	cluster   *exec.Cluster
	ctx       *sched.Context
	scheduler sched.Scheduler
	virtuals  *rng.Stream
	jobs      []*JobHandle
	nextJob   exec.JobID
	tracer    *TraceBuffer
	metrics   *Metrics
}

// New creates an empty grid.
func New(opts Options) (*Grid, error) {
	opts = opts.withDefaults()
	if opts.GPUSlots < 0 || opts.GPUSlots > 8 {
		return nil, fmt.Errorf("hetgrid: GPUSlots %d outside 0..8", opts.GPUSlots)
	}
	eng := sim.New()
	space := resource.NewSpace(opts.GPUSlots)
	ov := can.NewOverlay(space.Dims())
	cluster := exec.NewCluster(eng, exec.Config{Gamma: opts.Gamma})
	ctx := sched.NewContext(eng, ov, cluster, space, opts.Seed)
	ctx.StoppingFactor = opts.StoppingFactor
	ctx.RefreshPeriod = sim.FromSeconds(opts.RefreshSeconds)
	g := &Grid{
		opts:     opts,
		eng:      eng,
		space:    space,
		ov:       ov,
		cluster:  cluster,
		ctx:      ctx,
		virtuals: rng.NewSplit(opts.Seed, "grid.virtual"),
		nextJob:  1,
	}
	switch opts.Scheme {
	case SchemeCanHet:
		g.scheduler = sched.NewCanHet(ctx)
	case SchemeCanHom:
		g.scheduler = sched.NewCanHom(ctx)
	case SchemeCentral:
		g.scheduler = sched.NewCentral(ctx)
	default:
		return nil, fmt.Errorf("hetgrid: unknown scheme %q", opts.Scheme)
	}
	return g, nil
}

// AddNode admits a node to the overlay.
func (g *Grid) AddNode(spec NodeSpec) (NodeID, error) {
	caps, err := spec.toCaps(g.opts.GPUSlots, g.virtuals.Float64()*0.999999)
	if err != nil {
		return 0, err
	}
	node, err := g.joinWithRetry(caps)
	if err != nil {
		return 0, err
	}
	g.cluster.AddNode(node.ID, caps)
	g.record(trace.NodeJoin, NodeID(node.ID), -1, 0)
	return NodeID(node.ID), nil
}

// AddRandomNodes admits n nodes drawn from the synthetic population of
// the paper's evaluation (Section V-A): skewed-low desktop CPUs, 0–2
// GPUs of distinct types.
func (g *Grid) AddRandomNodes(n int) ([]NodeID, error) {
	gen := workload.NewNodeGen(g.space, rng.Split(g.opts.Seed, "grid.nodes"))
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		caps := gen.One()
		node, err := g.joinWithRetry(caps)
		if err != nil {
			return ids, err
		}
		g.cluster.AddNode(node.ID, caps)
		g.record(trace.NodeJoin, NodeID(node.ID), -1, 0)
		ids = append(ids, NodeID(node.ID))
	}
	return ids, nil
}

func (g *Grid) joinWithRetry(caps *resource.NodeCaps) (*can.Node, error) {
	for try := 0; ; try++ {
		node, err := g.ov.Join(g.space.NodePoint(caps), caps)
		if err == nil {
			return node, nil
		}
		if err != can.ErrDuplicatePoint || try >= 8 {
			return nil, err
		}
		caps.Virtual = g.virtuals.Float64() * 0.999999
	}
}

// RemoveNode withdraws a node from the grid: its CAN zone is taken over
// per the split-history plan, and any jobs queued or running on it are
// re-matched to other nodes (running jobs restart from scratch, as a
// desktop grid restarts preempted work). Jobs that no remaining node
// can satisfy are returned as lost handles; their status stays queued.
func (g *Grid) RemoveNode(id NodeID) (requeued, lost []*JobHandle, err error) {
	if g.ov.Node(can.NodeID(id)) == nil {
		return nil, nil, fmt.Errorf("hetgrid: unknown node %d", id)
	}
	// Leave the overlay before draining the runtime: if the overlay
	// rejects the departure we have mutated nothing, whereas draining
	// first would strand the orphaned jobs — removed from the cluster's
	// books but never re-matched — on the error return.
	if _, err := g.ov.Leave(can.NodeID(id)); err != nil {
		return nil, nil, err
	}
	orphans := g.cluster.RemoveNode(can.NodeID(id))
	g.record(trace.NodeLeave, id, -1, float64(len(orphans)))
	for _, j := range orphans {
		h := g.handleFor(j)
		node, perr := g.scheduler.Place(j)
		if perr != nil {
			g.record(trace.JobLost, id, int64(j.ID), 0)
			lost = append(lost, h)
			continue
		}
		g.record(trace.JobRequeue, NodeID(node), int64(j.ID), 0)
		if serr := g.cluster.Submit(j, node); serr != nil {
			g.record(trace.JobLost, id, int64(j.ID), 0)
			lost = append(lost, h)
			continue
		}
		requeued = append(requeued, h)
	}
	g.pokeMetrics()
	return requeued, lost, nil
}

func (g *Grid) handleFor(j *exec.Job) *JobHandle {
	for _, h := range g.jobs {
		if h.job == j {
			return h
		}
	}
	return &JobHandle{job: j}
}

// Nodes returns the number of live nodes.
func (g *Grid) Nodes() int { return g.ov.Len() }

// Dims returns the CAN dimensionality.
func (g *Grid) Dims() int { return g.space.Dims() }

// Submit matches a job to a run node at the current virtual time and
// queues it there. The returned handle tracks the job through the
// simulation.
func (g *Grid) Submit(spec JobSpec) (*JobHandle, error) {
	req, err := spec.toReq(g.opts.GPUSlots)
	if err != nil {
		return nil, err
	}
	j := &exec.Job{
		ID:           g.nextJob,
		Req:          req,
		Dominant:     resource.DominantCE(req),
		BaseDuration: sim.FromSeconds(spec.DurationHours * 3600),
		Submitted:    g.eng.Now(),
	}
	g.nextJob++
	node, err := g.scheduler.Place(j)
	if err != nil {
		return nil, err
	}
	g.record(trace.JobSubmit, NodeID(node), int64(j.ID), 0)
	if err := g.cluster.Submit(j, node); err != nil {
		return nil, err
	}
	h := &JobHandle{job: j}
	g.jobs = append(g.jobs, h)
	g.pokeMetrics()
	return h, nil
}

// RunFor advances virtual time by the given number of seconds,
// executing queued work.
func (g *Grid) RunFor(seconds float64) {
	g.eng.RunUntil(g.eng.Now().Add(sim.FromSeconds(seconds)))
}

// Run executes until all submitted jobs have finished.
func (g *Grid) Run() { g.eng.Run() }

// NowSeconds returns the current virtual time in seconds.
func (g *Grid) NowSeconds() float64 { return g.eng.Now().Seconds() }

// Jobs returns handles for every submitted job, in submission order.
func (g *Grid) Jobs() []*JobHandle { return append([]*JobHandle(nil), g.jobs...) }

// SchedulerName reports the active matchmaker.
func (g *Grid) SchedulerName() string { return g.scheduler.Name() }
