package hetgrid

import (
	"testing"
)

func basicNode() NodeSpec {
	return NodeSpec{
		CPU:    CPUSpec{Clock: 2.0, Cores: 4, MemoryGB: 8},
		DiskGB: 200,
	}
}

func gpuNode(slot int) NodeSpec {
	n := basicNode()
	n.GPUs = []GPUSpec{{Slot: slot, Clock: 1.2, Cores: 240, MemoryGB: 4}}
	return n
}

func TestNewGridDefaults(t *testing.T) {
	g, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims() != 11 {
		t.Fatalf("default dims = %d, want 11 (2 GPU slots)", g.Dims())
	}
	if g.SchedulerName() != "can-het" {
		t.Fatalf("default scheduler = %q", g.SchedulerName())
	}
}

func TestNewGridRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Scheme: "nonsense"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := New(Options{GPUSlots: 99}); err == nil {
		t.Fatal("absurd GPU slots accepted")
	}
}

func TestAddNodeValidation(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1})
	if _, err := g.AddNode(NodeSpec{}); err == nil {
		t.Fatal("zero node spec accepted")
	}
	if _, err := g.AddNode(gpuNode(5)); err == nil {
		t.Fatal("GPU slot beyond GPUSlots accepted")
	}
	bad := basicNode()
	bad.GPUs = []GPUSpec{
		{Slot: 1, Clock: 1, Cores: 64, MemoryGB: 1},
		{Slot: 1, Clock: 1, Cores: 64, MemoryGB: 1},
	}
	if _, err := g.AddNode(bad); err == nil {
		t.Fatal("duplicate GPU slot accepted")
	}
	if _, err := g.AddNode(basicNode()); err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 1 {
		t.Fatalf("Nodes() = %d", g.Nodes())
	}
}

func TestIdenticalNodesCoexist(t *testing.T) {
	// The virtual dimension must separate capability-identical nodes.
	g, _ := New(Options{})
	for i := 0; i < 20; i++ {
		if _, err := g.AddNode(basicNode()); err != nil {
			t.Fatalf("identical node %d rejected: %v", i, err)
		}
	}
	if g.Nodes() != 20 {
		t.Fatalf("Nodes() = %d, want 20", g.Nodes())
	}
}

func TestSubmitAndRunCPUJob(t *testing.T) {
	g, _ := New(Options{})
	g.AddNode(basicNode())
	h, err := g.Submit(JobSpec{
		CPU:           &CEReqSpec{Clock: 1.0, Cores: 2},
		DurationHours: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Status() != StatusRunning {
		t.Fatalf("status = %v, want running on an empty grid", h.Status())
	}
	if h.DominantCE() != "cpu" {
		t.Fatalf("dominant = %q", h.DominantCE())
	}
	g.Run()
	if h.Status() != StatusFinished {
		t.Fatalf("status = %v after Run", h.Status())
	}
	if h.WaitSeconds() != 0 {
		t.Fatalf("wait = %v, want 0", h.WaitSeconds())
	}
	// 1 nominal hour on a 2.0-clock CPU: 1800 s.
	if h.TurnaroundSeconds() != 1800 {
		t.Fatalf("turnaround = %v, want 1800", h.TurnaroundSeconds())
	}
}

func TestSubmitGPUJobLandsOnGPUNode(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1, Seed: 3})
	var gpuID NodeID
	for i := 0; i < 10; i++ {
		if _, err := g.AddNode(basicNode()); err != nil {
			t.Fatal(err)
		}
	}
	id, err := g.AddNode(gpuNode(1))
	if err != nil {
		t.Fatal(err)
	}
	gpuID = id
	h, err := g.Submit(JobSpec{
		CPU:           &CEReqSpec{Cores: 1},
		GPU:           &CEReqSpec{Clock: 1.0, Cores: 128},
		GPUSlot:       1,
		DurationHours: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.RunNode() != gpuID {
		t.Fatalf("GPU job placed on node %d, want the GPU node %d", h.RunNode(), gpuID)
	}
	if h.DominantCE() != "gpu1" {
		t.Fatalf("dominant = %q, want gpu1", h.DominantCE())
	}
}

func TestSubmitUnmatchableJob(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1})
	g.AddNode(basicNode())
	if _, err := g.Submit(JobSpec{
		GPU:           &CEReqSpec{Cores: 64},
		GPUSlot:       1,
		DurationHours: 1,
	}); err == nil {
		t.Fatal("GPU job accepted on a GPU-less grid")
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	g, _ := New(Options{})
	g.AddNode(basicNode())
	if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}}); err == nil {
		t.Fatal("job without duration accepted")
	}
	if _, err := g.Submit(JobSpec{GPU: &CEReqSpec{Cores: 1}, GPUSlot: 7, DurationHours: 1}); err == nil {
		t.Fatal("job with out-of-range GPU slot accepted")
	}
}

func TestRunForAdvancesTime(t *testing.T) {
	g, _ := New(Options{})
	g.AddNode(basicNode())
	g.RunFor(120)
	if g.NowSeconds() != 120 {
		t.Fatalf("NowSeconds = %v", g.NowSeconds())
	}
}

func TestGridStats(t *testing.T) {
	g, _ := New(Options{Seed: 5})
	if _, err := g.AddRandomNodes(30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		g.RunFor(30)
	}
	g.Run()
	st := g.Stats()
	if st.Nodes != 30 || st.Submitted != 50 || st.Finished != 50 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ZeroWaitShare <= 0.5 {
		t.Fatalf("zero-wait share = %v; a lightly loaded grid should mostly start jobs at once", st.ZeroWaitShare)
	}
	if st.MaxWaitSec < st.P99WaitSec || st.P99WaitSec < st.P90WaitSec {
		t.Fatal("wait quantiles out of order")
	}
}

func TestAddRandomNodesPopulation(t *testing.T) {
	g, _ := New(Options{Seed: 9})
	ids, err := g.AddRandomNodes(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 || g.Nodes() != 100 {
		t.Fatalf("population %d / %d", len(ids), g.Nodes())
	}
	infos := g.NodeInfos()
	if len(infos) != 100 {
		t.Fatalf("NodeInfos = %d entries", len(infos))
	}
	withGPU := 0
	for _, info := range infos {
		if len(info.GPUSlots) > 0 {
			withGPU++
		}
		if !info.Free {
			t.Fatal("fresh nodes must be free")
		}
	}
	if withGPU == 0 || withGPU == 100 {
		t.Fatalf("GPU-bearing nodes = %d; the synthetic population should be mixed", withGPU)
	}
}

func TestSchemesProduceDifferentPlacements(t *testing.T) {
	waits := map[Scheme]float64{}
	for _, scheme := range []Scheme{SchemeCanHet, SchemeCanHom, SchemeCentral} {
		g, err := New(Options{Scheme: scheme, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddRandomNodes(60); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			spec := JobSpec{CPU: &CEReqSpec{Cores: 2}, DurationHours: 1}
			if i%3 == 0 {
				spec.GPU = &CEReqSpec{Cores: 32}
				spec.GPUSlot = 1 + i%2
			}
			if _, err := g.Submit(spec); err != nil {
				continue // some GPU jobs may be unmatchable on a small grid
			}
			g.RunFor(20)
		}
		g.Run()
		waits[scheme] = g.Stats().MeanWaitSec
	}
	t.Logf("mean waits: %v", waits)
	if waits[SchemeCanHom] <= waits[SchemeCentral] {
		t.Skipf("small-sample inversion: can-hom %.0f <= central %.0f", waits[SchemeCanHom], waits[SchemeCentral])
	}
}

func TestMaintenanceFacade(t *testing.T) {
	m, err := NewMaintenance(MaintenanceOptions{Dims: 5, Scheme: HeartbeatAdaptive, HeartbeatSeconds: 10, Seed: 2}, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.RunForSeconds(300)
	if m.AliveNodes() != 30 {
		t.Fatalf("alive = %d, want 30", m.AliveNodes())
	}
	missing, stale := m.BrokenLinks()
	if missing != 0 || stale != 0 {
		t.Fatalf("broken links %d/%d on a quiet overlay", missing, stale)
	}
	tr := m.TotalTraffic()
	if tr.Messages == 0 || tr.Bytes == 0 {
		t.Fatal("no protocol traffic recorded")
	}
	m.ResetTrafficWindow()
	if m.WindowTraffic().Messages != 0 {
		t.Fatal("window not reset")
	}
	m.RunForSeconds(60)
	if m.WindowTraffic().Messages == 0 {
		t.Fatal("window not accumulating")
	}
}

func TestMaintenanceChurnCounters(t *testing.T) {
	m, err := NewMaintenance(MaintenanceOptions{Dims: 5, HeartbeatSeconds: 10, Seed: 4}, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.RunForSeconds(600)
	joins, leaves, fails := m.Churn()
	if joins < 25 || leaves+fails == 0 {
		t.Fatalf("churn counters: joins=%d leaves=%d fails=%d", joins, leaves, fails)
	}
	m.StopChurn()
	j0, l0, f0 := m.Churn()
	m.RunForSeconds(600)
	j1, l1, f1 := m.Churn()
	if j1 != j0 || l1 != l0 || f1 != f0 {
		t.Fatal("churn continued after StopChurn")
	}
}

func TestMaintenanceRejectsBadOptions(t *testing.T) {
	if _, err := NewMaintenance(MaintenanceOptions{Scheme: "bogus"}, 10, 0); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := NewMaintenance(MaintenanceOptions{Dims: 1}, 10, 0); err == nil {
		t.Fatal("dims=1 accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		g, _ := New(Options{Seed: 77})
		g.AddRandomNodes(40)
		for i := 0; i < 200; i++ {
			g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1})
			g.RunFor(10)
		}
		g.Run()
		return g.Stats().MeanWaitSec
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds diverged: %v vs %v", a, b)
	}
}
