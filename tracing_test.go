package hetgrid

import (
	"bytes"
	"strings"
	"testing"
)

func TestGridTracingLifecycle(t *testing.T) {
	g, _ := New(Options{Seed: 31})
	var tb TraceBuffer
	g.SetTraceBuffer(&tb)

	a, _ := g.AddNode(basicNode())
	b, _ := g.AddNode(basicNode())
	_ = b
	h, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 2}, DurationHours: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Run()

	evs := tb.Events()
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, string(e.Kind))
	}
	want := []string{"node.join", "node.join", "job.submit", "job.start", "job.finish"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// The finish event carries the wait time and the run node.
	fin := evs[len(evs)-1]
	if fin.Job != h.ID() || fin.Node != int64(h.RunNode()) || fin.Value != h.WaitSeconds() {
		t.Fatalf("finish event = %+v", fin)
	}
	// Timestamps are nondecreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("trace timestamps decreased")
		}
	}
	_ = a
}

func TestGridTracingRemoveNode(t *testing.T) {
	g, _ := New(Options{Seed: 32})
	var tb TraceBuffer
	g.SetTraceBuffer(&tb)
	a, _ := g.AddNode(basicNode())
	g.AddNode(basicNode())
	h, _ := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1})
	victim := NodeID(h.RunNode())
	_ = a
	if _, _, err := g.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	var sawLeave, sawRequeueOrLost bool
	for _, e := range tb.Events() {
		switch e.Kind {
		case TraceNodeLeave:
			sawLeave = true
		case TraceJobRequeue, TraceJobLost:
			sawRequeueOrLost = true
		}
	}
	if !sawLeave || !sawRequeueOrLost {
		t.Fatalf("missing membership events: leave=%v requeue/lost=%v", sawLeave, sawRequeueOrLost)
	}
}

func TestGridTracingExports(t *testing.T) {
	g, _ := New(Options{Seed: 33})
	var tb TraceBuffer
	g.SetTraceBuffer(&tb)
	g.AddNode(basicNode())
	g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5})
	g.Run()

	var jsonl, csv bytes.Buffer
	if err := tb.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"job.finish"`) {
		t.Fatal("JSONL missing finish event")
	}
	if !strings.Contains(csv.String(), "job.finish") {
		t.Fatal("CSV missing finish event")
	}
}

func TestGridTracingDetach(t *testing.T) {
	g, _ := New(Options{Seed: 34})
	var tb TraceBuffer
	g.SetTraceBuffer(&tb)
	g.AddNode(basicNode())
	g.SetTraceBuffer(nil)
	g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5})
	g.Run()
	if tb.Len() != 1 { // only the node.join before detaching
		t.Fatalf("events after detach: %d", tb.Len())
	}
}
