package hetgrid

import (
	"io"

	"hetgrid/internal/exec"
	"hetgrid/internal/spans"
	"hetgrid/internal/trace"
)

// TraceEvent is one recorded simulation occurrence. See TraceBuffer.
type TraceEvent = trace.Event

// Trace kinds emitted by Grid simulations.
const (
	TraceJobSubmit  = trace.JobSubmit
	TraceJobStart   = trace.JobStart
	TraceJobFinish  = trace.JobFinish
	TraceJobRequeue = trace.JobRequeue
	TraceJobLost    = trace.JobLost
	TraceNodeJoin   = trace.NodeJoin
	TraceNodeLeave  = trace.NodeLeave
)

// Placement-span kinds, recorded only when SetPlacementSpans is on.
// Together with job.submit they form one causal tree per job (Depth
// gives the nesting level); cmd/traceview renders it.
const (
	TracePlaceRoute = trace.PlaceRoute // one per CAN routing hop (value = hop index)
	TracePlacePush  = trace.PlacePush  // one per load-balancing push hop
	TracePlaceMatch = trace.PlaceMatch // final dominant-CE match (detail = pick kind)
)

// TraceBuffer accumulates events in memory and exports them as JSONL or
// CSV. Attach one with Grid.SetTraceBuffer before submitting work.
type TraceBuffer struct {
	buf trace.Buffer
}

// Len returns the number of recorded events.
func (t *TraceBuffer) Len() int { return t.buf.Len() }

// Events returns a copy of the recorded events in order.
func (t *TraceBuffer) Events() []TraceEvent { return t.buf.Events() }

// WriteJSONL exports the trace as one JSON object per line.
func (t *TraceBuffer) WriteJSONL(w io.Writer) error { return t.buf.WriteJSONL(w) }

// WriteCSV exports the trace as CSV with a header row.
func (t *TraceBuffer) WriteCSV(w io.Writer) error { return t.buf.WriteCSV(w) }

// SetTraceBuffer installs (or, with nil, removes) a trace buffer that
// records job lifecycle and membership events: job.submit, job.start,
// job.finish (value = wait seconds), job.requeue, job.lost, node.join,
// node.leave.
func (g *Grid) SetTraceBuffer(t *TraceBuffer) {
	g.tracer = t
	if t == nil {
		g.cluster.OnStart = nil
		g.cluster.OnFinish = nil
		g.ctx.Probe = nil // spans cannot outlive their buffer
		return
	}
	if g.ctx.Probe != nil {
		g.ctx.Probe = spans.New(g.eng, &t.buf) // re-point spans at the new buffer
	}
	g.cluster.OnStart = func(j *exec.Job) {
		t.buf.Record(trace.Event{
			T: g.eng.Now().Seconds(), Kind: trace.JobStart,
			Node: int64(j.RunNode), Job: int64(j.ID),
			Value: j.WaitTime().Seconds(),
		})
	}
	g.cluster.OnFinish = func(j *exec.Job) {
		t.buf.Record(trace.Event{
			T: g.eng.Now().Seconds(), Kind: trace.JobFinish,
			Node: int64(j.RunNode), Job: int64(j.ID),
			Value: j.WaitTime().Seconds(),
		})
	}
}

// SetPlacementSpans toggles recording of matchmaking internals into the
// installed trace buffer: place.route (each CAN routing hop toward the
// job's point), place.push (each hop of Algorithm 1's pushing phase)
// and place.match (the chosen node, with the pick kind — "free",
// "accept", "score" or "fallback" — in Detail, or "unmatched" with node
// -1). Spans are off by default so plain lifecycle traces stay compact;
// enabling them requires a trace buffer (SetTraceBuffer first).
func (g *Grid) SetPlacementSpans(enabled bool) {
	if !enabled || g.tracer == nil {
		g.ctx.Probe = nil
		return
	}
	g.ctx.Probe = spans.New(g.eng, &g.tracer.buf)
}

// record emits an event when a tracer is installed.
func (g *Grid) record(kind trace.Kind, node NodeID, job int64, value float64) {
	if g.tracer == nil {
		return
	}
	g.tracer.buf.Record(trace.Event{
		T: g.eng.Now().Seconds(), Kind: kind,
		Node: int64(node), Job: job, Value: value,
	})
}
