package hetgrid

import (
	"io"

	"hetgrid/internal/exec"
	"hetgrid/internal/trace"
)

// TraceEvent is one recorded simulation occurrence. See TraceBuffer.
type TraceEvent = trace.Event

// Trace kinds emitted by Grid simulations.
const (
	TraceJobSubmit  = trace.JobSubmit
	TraceJobStart   = trace.JobStart
	TraceJobFinish  = trace.JobFinish
	TraceJobRequeue = trace.JobRequeue
	TraceJobLost    = trace.JobLost
	TraceNodeJoin   = trace.NodeJoin
	TraceNodeLeave  = trace.NodeLeave
)

// TraceBuffer accumulates events in memory and exports them as JSONL or
// CSV. Attach one with Grid.SetTraceBuffer before submitting work.
type TraceBuffer struct {
	buf trace.Buffer
}

// Len returns the number of recorded events.
func (t *TraceBuffer) Len() int { return t.buf.Len() }

// Events returns a copy of the recorded events in order.
func (t *TraceBuffer) Events() []TraceEvent { return t.buf.Events() }

// WriteJSONL exports the trace as one JSON object per line.
func (t *TraceBuffer) WriteJSONL(w io.Writer) error { return t.buf.WriteJSONL(w) }

// WriteCSV exports the trace as CSV with a header row.
func (t *TraceBuffer) WriteCSV(w io.Writer) error { return t.buf.WriteCSV(w) }

// SetTraceBuffer installs (or, with nil, removes) a trace buffer that
// records job lifecycle and membership events: job.submit, job.start,
// job.finish (value = wait seconds), job.requeue, job.lost, node.join,
// node.leave.
func (g *Grid) SetTraceBuffer(t *TraceBuffer) {
	g.tracer = t
	if t == nil {
		g.cluster.OnStart = nil
		g.cluster.OnFinish = nil
		return
	}
	g.cluster.OnStart = func(j *exec.Job) {
		t.buf.Record(trace.Event{
			T: g.eng.Now().Seconds(), Kind: trace.JobStart,
			Node: int64(j.RunNode), Job: int64(j.ID),
			Value: j.WaitTime().Seconds(),
		})
	}
	g.cluster.OnFinish = func(j *exec.Job) {
		t.buf.Record(trace.Event{
			T: g.eng.Now().Seconds(), Kind: trace.JobFinish,
			Node: int64(j.RunNode), Job: int64(j.ID),
			Value: j.WaitTime().Seconds(),
		})
	}
}

// record emits an event when a tracer is installed.
func (g *Grid) record(kind trace.Kind, node NodeID, job int64, value float64) {
	if g.tracer == nil {
		return
	}
	g.tracer.buf.Record(trace.Event{
		T: g.eng.Now().Seconds(), Kind: kind,
		Node: int64(node), Job: job, Value: value,
	})
}
