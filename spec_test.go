package hetgrid

import (
	"testing"
	"testing/quick"
)

func TestNodeSpecRoundTrip(t *testing.T) {
	spec := NodeSpec{
		CPU:    CPUSpec{Clock: 2.4, Cores: 4, MemoryGB: 8},
		GPUs:   []GPUSpec{{Slot: 2, Clock: 1.1, Cores: 240, MemoryGB: 4}, {Slot: 1, Clock: 0.9, Cores: 128, MemoryGB: 2}},
		DiskGB: 320,
	}
	caps, err := spec.toCaps(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := caps.Validate(); err != nil {
		t.Fatal(err)
	}
	// GPUs must come out sorted by slot even when specified out of order.
	if caps.CEs[1].Type != 1 || caps.CEs[2].Type != 2 {
		t.Fatalf("CE order: %v, %v", caps.CEs[1].Type, caps.CEs[2].Type)
	}
	if caps.CEs[1].Clock != 0.9 || caps.CEs[2].Clock != 1.1 {
		t.Fatal("GPU fields shuffled during sort")
	}
	cpu := caps.CPU()
	if cpu.Clock != 2.4 || cpu.Cores != 4 || cpu.Memory != 8 || caps.Disk != 320 {
		t.Fatal("CPU/disk fields lost in conversion")
	}
}

func TestNodeSpecConcurrentGPU(t *testing.T) {
	spec := NodeSpec{
		CPU:    CPUSpec{Clock: 1, Cores: 2, MemoryGB: 2},
		GPUs:   []GPUSpec{{Slot: 1, Clock: 1, Cores: 64, MemoryGB: 1, Concurrent: true}},
		DiskGB: 10,
	}
	caps, err := spec.toCaps(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if caps.CE(1).Dedicated {
		t.Fatal("Concurrent GPU converted as dedicated")
	}
}

// Property: any structurally plausible spec either converts to a
// capability vector that passes Validate, or is rejected — toCaps never
// produces an invalid vector.
func TestNodeSpecNeverProducesInvalidCaps(t *testing.T) {
	f := func(clockR, coresR, memR uint8, slotR, gclockR uint8, virtR uint16) bool {
		spec := NodeSpec{
			CPU: CPUSpec{
				Clock:    float64(clockR) / 32,
				Cores:    int(coresR) % 12,
				MemoryGB: float64(memR) / 8,
			},
			DiskGB: float64(memR),
		}
		if slotR%3 != 0 {
			spec.GPUs = []GPUSpec{{
				Slot:     int(slotR) % 5,
				Clock:    float64(gclockR) / 64,
				Cores:    int(gclockR) % 300,
				MemoryGB: float64(gclockR) / 40,
			}}
		}
		caps, err := spec.toCaps(2, float64(virtR)/65536)
		if err != nil {
			return true // rejected is fine
		}
		return caps.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJobSpecDefaultsGPUSlot(t *testing.T) {
	spec := JobSpec{GPU: &CEReqSpec{Cores: 32}, DurationHours: 1}
	req, err := spec.toReq(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := req.CE[1]; !ok {
		t.Fatal("GPU requirement without a slot should default to slot 1")
	}
}

func TestJobSpecEmptyGetsMinimalCPU(t *testing.T) {
	req, err := JobSpec{DurationHours: 1}.toReq(2)
	if err != nil {
		t.Fatal(err)
	}
	if req.CoresOn(0) != 1 {
		t.Fatal("empty job spec should require one CPU core")
	}
}
