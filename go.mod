module hetgrid

go 1.22
